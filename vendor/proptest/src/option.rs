//! Strategies over `Option`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`of`].
pub struct OptionStrategy<S>(S);

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // `None` about a quarter of the time, like upstream's default
        // weighting, so both arms get regular coverage.
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.0.generate(rng))
        }
    }
}

/// `Option<T>` values from an inner strategy for `T`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy(inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yields_both_variants() {
        let mut rng = TestRng::from_name("option_of");
        let s = of(crate::strategy::any::<u8>());
        let vals: Vec<Option<u8>> = (0..64).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.iter().any(Option::is_none));
        assert!(vals.iter().any(Option::is_some));
    }
}
