//! The memoizing, parallel evaluation engine.
//!
//! Every simulation the optimizer, the techniques, and the experiment
//! binaries request goes through one [`EvalEngine`], which
//!
//! * **memoizes** results in a cache keyed by a stable structural hash
//!   of the allocated kernel IR together with the GPU configuration,
//!   the launch, the register count, and the TLP cap — re-evaluating
//!   the same binary at the same operating point is free;
//! * **parallelizes** batches of independent simulations over a
//!   bounded pool of scoped worker threads (width from
//!   [`std::thread::available_parallelism`], overridable via
//!   [`EvalEngine::new`], the `CRAT_THREADS` environment variable, or
//!   the experiment binaries' `--threads` flag);
//! * **decodes once**: kernels are lowered to [`DecodedKernel`]s in a
//!   second cache keyed by the kernel-only structural hash, so a TLP
//!   or register sweep over one binary pays validation and lowering a
//!   single time and every simulation runs on the pre-decoded IR;
//! * **counts** what it did ([`EngineStats`]): simulations executed,
//!   cache hits, kernels decoded, simulated cycles and warp
//!   instructions, and wall time spent inside the simulator (from
//!   which it derives sim-side throughput).
//!
//! Determinism: the simulator itself is deterministic, the cache key
//! is injective over everything the simulator reads, and batch results
//! are returned in submission order — so results obtained through the
//! engine are bit-identical to calling [`crat_sim::simulate`]
//! directly, at any thread count, cold or warm.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crat_ptx::Kernel;
use crat_sim::{DecodedKernel, GpuConfig, LaunchConfig, SimError, SimStats};

/// 64-bit FNV-1a with a caller-chosen offset basis. The standard
/// library's default hasher is randomly seeded per process; the memo
/// cache instead needs a hash that is stable across runs so cached
/// sim counts (and therefore reported engine stats) are reproducible.
struct Fnv1a(u64);

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// The standard FNV-1a offset basis.
const FNV_BASIS_LO: u64 = 0xcbf2_9ce4_8422_2325;
/// A second, independent basis for the high half of the 128-bit key.
const FNV_BASIS_HI: u64 = 0x9e37_79b9_7f4a_7c15;

impl Hasher for Fnv1a {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// The cache key: two independent 64-bit FNV-1a digests of the same
/// structural content, giving an effectively 128-bit fingerprint so
/// accidental collisions between distinct operating points are not a
/// practical concern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SimKey(u64, u64);

fn sim_key(
    kernel: &Kernel,
    gpu: &GpuConfig,
    launch: &LaunchConfig,
    regs_per_thread: u32,
    tlp_cap: Option<u32>,
) -> SimKey {
    let digest = |basis: u64| {
        let mut h = Fnv1a(basis);
        kernel.hash(&mut h);
        gpu.hash(&mut h);
        launch.hash(&mut h);
        regs_per_thread.hash(&mut h);
        tlp_cap.hash(&mut h);
        h.finish()
    };
    SimKey(digest(FNV_BASIS_LO), digest(FNV_BASIS_HI))
}

/// The decoded-kernel cache key: the kernel-only prefix of [`sim_key`],
/// so every operating point of one binary shares a single decode.
fn kernel_key(kernel: &Kernel) -> SimKey {
    let digest = |basis: u64| {
        let mut h = Fnv1a(basis);
        kernel.hash(&mut h);
        h.finish()
    };
    SimKey(digest(FNV_BASIS_LO), digest(FNV_BASIS_HI))
}

/// One simulation request, by reference: the engine never clones a
/// kernel to queue it.
#[derive(Debug, Clone, Copy)]
pub struct SimJob<'a> {
    /// The (allocated) kernel to run.
    pub kernel: &'a Kernel,
    /// The GPU configuration.
    pub gpu: &'a GpuConfig,
    /// The launch.
    pub launch: &'a LaunchConfig,
    /// Registers per thread of the binary being simulated.
    pub regs_per_thread: u32,
    /// Optional cap on resident blocks (thread throttling).
    pub tlp_cap: Option<u32>,
}

/// A snapshot of the engine's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Simulations actually executed (cache misses).
    pub sims_executed: u64,
    /// Requests served from the memo cache, including requests that
    /// waited for an in-flight simulation of the same key.
    pub cache_hits: u64,
    /// Nanoseconds of wall time spent inside the simulator, summed
    /// over workers (exceeds elapsed time when running in parallel).
    pub sim_nanos: u64,
    /// Kernels lowered to decoded form (decoded-cache misses).
    pub decodes: u64,
    /// Cycles simulated, summed over executed simulations.
    pub sim_cycles: u64,
    /// Warp instructions executed, summed over executed simulations.
    pub sim_insts: u64,
}

impl EngineStats {
    /// Total simulation requests (executed + served from cache).
    pub fn requests(&self) -> u64 {
        self.sims_executed + self.cache_hits
    }

    /// Fraction of requests served from the cache; 0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.requests();
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Wall time spent simulating, summed over workers.
    pub fn sim_time(&self) -> Duration {
        Duration::from_nanos(self.sim_nanos)
    }

    /// Simulator throughput in warp instructions per second of sim
    /// time; 0 when nothing has been simulated.
    pub fn sim_insts_per_sec(&self) -> f64 {
        if self.sim_nanos == 0 {
            0.0
        } else {
            self.sim_insts as f64 * 1e9 / self.sim_nanos as f64
        }
    }

    /// Simulator throughput in cycles per second of sim time; 0 when
    /// nothing has been simulated.
    pub fn sim_cycles_per_sec(&self) -> f64 {
        if self.sim_nanos == 0 {
            0.0
        } else {
            self.sim_cycles as f64 * 1e9 / self.sim_nanos as f64
        }
    }
}

/// Cache slot: filled exactly once by whichever request arrives first;
/// concurrent requests for the same key block on it instead of running
/// a duplicate simulation.
type Slot = Arc<OnceLock<Result<SimStats, SimError>>>;

/// The memoizing, parallel evaluation engine. See the module docs.
#[derive(Debug)]
pub struct EvalEngine {
    threads: usize,
    cache: Mutex<HashMap<SimKey, Slot>>,
    decoded: Mutex<HashMap<SimKey, Arc<DecodedKernel>>>,
    sims_executed: AtomicU64,
    cache_hits: AtomicU64,
    sim_nanos: AtomicU64,
    decodes: AtomicU64,
    sim_cycles: AtomicU64,
    sim_insts: AtomicU64,
}

impl EvalEngine {
    /// An engine with `threads` workers; `0` means
    /// [`available_parallelism`](std::thread::available_parallelism).
    pub fn new(threads: usize) -> EvalEngine {
        let threads = if threads == 0 {
            hardware_threads()
        } else {
            threads
        };
        EvalEngine {
            threads,
            cache: Mutex::new(HashMap::new()),
            decoded: Mutex::new(HashMap::new()),
            sims_executed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            sim_nanos: AtomicU64::new(0),
            decodes: AtomicU64::new(0),
            sim_cycles: AtomicU64::new(0),
            sim_insts: AtomicU64::new(0),
        }
    }

    /// A strictly serial engine (useful as a determinism reference).
    pub fn serial() -> EvalEngine {
        EvalEngine::new(1)
    }

    /// The worker-pool width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A snapshot of the engine's counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            sims_executed: self.sims_executed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            sim_nanos: self.sim_nanos.load(Ordering::Relaxed),
            decodes: self.decodes.load(Ordering::Relaxed),
            sim_cycles: self.sim_cycles.load(Ordering::Relaxed),
            sim_insts: self.sim_insts.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct operating points cached so far.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().expect("engine cache poisoned").len()
    }

    /// Number of distinct kernels in the decoded-kernel cache.
    pub fn decoded_len(&self) -> usize {
        self.decoded.lock().expect("decoded cache poisoned").len()
    }

    /// Drop all cached results and decoded kernels, and zero the
    /// counters.
    pub fn reset(&self) {
        self.cache.lock().expect("engine cache poisoned").clear();
        self.decoded.lock().expect("decoded cache poisoned").clear();
        self.sims_executed.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.sim_nanos.store(0, Ordering::Relaxed);
        self.decodes.store(0, Ordering::Relaxed);
        self.sim_cycles.store(0, Ordering::Relaxed);
        self.sim_insts.store(0, Ordering::Relaxed);
    }

    /// Lower `kernel` through the decoded-kernel cache: the first call
    /// for a given structural hash validates and decodes; later calls
    /// (any operating point of the same binary) share the result.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidKernel`] from validation; errors are not
    /// cached (they are cheap to recompute and rare).
    pub fn decode_cached(&self, kernel: &Kernel) -> Result<Arc<DecodedKernel>, SimError> {
        let key = kernel_key(kernel);
        if let Some(dk) = self
            .decoded
            .lock()
            .expect("decoded cache poisoned")
            .get(&key)
        {
            return Ok(dk.clone());
        }
        // Decode outside the lock; a concurrent decode of the same
        // kernel is harmless (first insert wins, duplicates are
        // dropped and not counted).
        let dk = Arc::new(crat_sim::decode(kernel)?);
        let mut cache = self.decoded.lock().expect("decoded cache poisoned");
        match cache.entry(key) {
            Entry::Occupied(e) => Ok(e.get().clone()),
            Entry::Vacant(v) => {
                self.decodes.fetch_add(1, Ordering::Relaxed);
                Ok(v.insert(dk).clone())
            }
        }
    }

    /// Simulate through the memo cache. Drop-in for
    /// [`crat_sim::simulate`]: the result (including errors) is
    /// bit-identical to a direct call.
    ///
    /// # Errors
    ///
    /// Whatever the underlying simulation returns; errors are cached
    /// like successes (the simulator is deterministic, so retrying
    /// cannot change the outcome).
    pub fn simulate(
        &self,
        kernel: &Kernel,
        gpu: &GpuConfig,
        launch: &LaunchConfig,
        regs_per_thread: u32,
        tlp_cap: Option<u32>,
    ) -> Result<SimStats, SimError> {
        let key = sim_key(kernel, gpu, launch, regs_per_thread, tlp_cap);
        let (slot, owner) = {
            let mut cache = self.cache.lock().expect("engine cache poisoned");
            match cache.entry(key) {
                Entry::Occupied(e) => (e.get().clone(), false),
                Entry::Vacant(v) => (v.insert(Arc::new(OnceLock::new())).clone(), true),
            }
        };
        if owner {
            let started = Instant::now();
            let result = self.decode_cached(kernel).and_then(|dk| {
                crat_sim::simulate_decoded(&dk, gpu, launch, regs_per_thread, tlp_cap)
            });
            let nanos = started.elapsed().as_nanos() as u64;
            self.sims_executed.fetch_add(1, Ordering::Relaxed);
            self.sim_nanos.fetch_add(nanos, Ordering::Relaxed);
            if let Ok(s) = &result {
                self.sim_cycles.fetch_add(s.cycles, Ordering::Relaxed);
                self.sim_insts.fetch_add(s.warp_insts, Ordering::Relaxed);
            }
            slot.set(result.clone())
                .expect("slot filled once, by its owner");
            result
        } else {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            slot.wait().clone()
        }
    }

    /// Run a batch of simulations across the worker pool, returning
    /// results **in submission order** (batch `i` → result `i`), so
    /// callers that scan for the first error or the earliest minimum
    /// behave exactly as a serial loop would.
    pub fn simulate_batch(&self, jobs: &[SimJob<'_>]) -> Vec<Result<SimStats, SimError>> {
        self.par_map(jobs, |j| {
            self.simulate(j.kernel, j.gpu, j.launch, j.regs_per_thread, j.tlp_cap)
        })
    }

    /// Apply `f` to every item across the worker pool and collect the
    /// results in item order. Falls back to a plain serial map when
    /// the pool width is 1 or the batch has a single item.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let n = items.len();
        let width = self.threads.min(n);
        if width <= 1 {
            return items.iter().map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let mut indexed: Vec<(usize, R)> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..width)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(&items[i])));
                        }
                        local
                    })
                })
                .collect();
            for w in workers {
                indexed.extend(w.join().expect("engine worker panicked"));
            }
        });
        indexed.sort_unstable_by_key(|&(i, _)| i);
        indexed.into_iter().map(|(_, r)| r).collect()
    }
}

impl Default for EvalEngine {
    fn default() -> EvalEngine {
        EvalEngine::new(0)
    }
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Worker-pool width requested by the environment: `CRAT_THREADS` if
/// set to a positive integer, otherwise the machine's available
/// parallelism.
pub fn threads_from_env() -> usize {
    std::env::var("CRAT_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(hardware_threads)
}

static GLOBAL: OnceLock<EvalEngine> = OnceLock::new();

/// The process-wide shared engine (one memo cache per process). The
/// first caller fixes the pool width — either [`configure_global`] or,
/// lazily, [`threads_from_env`].
pub fn global() -> &'static EvalEngine {
    GLOBAL.get_or_init(|| EvalEngine::new(threads_from_env()))
}

/// Fix the global engine's pool width (`0` = available parallelism)
/// before anything else uses it. Returns the engine; if the global
/// engine already exists its width is left unchanged.
pub fn configure_global(threads: usize) -> &'static EvalEngine {
    GLOBAL.get_or_init(|| EvalEngine::new(threads))
}

/// Simulate through the process-wide engine. Signature-compatible with
/// [`crat_sim::simulate`] so call sites can switch by changing one
/// import.
///
/// # Errors
///
/// Whatever the underlying simulation returns.
pub fn simulate(
    kernel: &Kernel,
    gpu: &GpuConfig,
    launch: &LaunchConfig,
    regs_per_thread: u32,
    tlp_cap: Option<u32>,
) -> Result<SimStats, SimError> {
    global().simulate(kernel, gpu, launch, regs_per_thread, tlp_cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crat_workloads::{build_kernel, launch_sized, suite};

    fn setup() -> (Kernel, GpuConfig, LaunchConfig) {
        let app = suite::spec("BAK");
        (build_kernel(app), GpuConfig::fermi(), launch_sized(app, 30))
    }

    #[test]
    fn key_is_stable_and_sensitive() {
        let (k, gpu, launch) = setup();
        let a = sim_key(&k, &gpu, &launch, 16, Some(2));
        let b = sim_key(&k, &gpu, &launch, 16, Some(2));
        assert_eq!(a, b, "same inputs must produce the same key");
        assert_ne!(
            a,
            sim_key(&k, &gpu, &launch, 17, Some(2)),
            "regs must be keyed"
        );
        assert_ne!(
            a,
            sim_key(&k, &gpu, &launch, 16, Some(3)),
            "tlp cap must be keyed"
        );
        assert_ne!(
            a,
            sim_key(&k, &gpu, &launch, 16, None),
            "capped vs uncapped must differ"
        );
        let kepler = GpuConfig::kepler();
        assert_ne!(
            a,
            sim_key(&k, &kepler, &launch, 16, Some(2)),
            "gpu must be keyed"
        );
    }

    #[test]
    fn key_ignores_param_insertion_order() {
        let (k, gpu, _) = setup();
        let l1 = LaunchConfig::new(30, 128)
            .with_param("a", 1)
            .with_param("b", 2);
        let l2 = LaunchConfig::new(30, 128)
            .with_param("b", 2)
            .with_param("a", 1);
        assert_eq!(
            sim_key(&k, &gpu, &l1, 16, None),
            sim_key(&k, &gpu, &l2, 16, None)
        );
    }

    #[test]
    fn cache_hit_returns_identical_stats() {
        let (k, gpu, launch) = setup();
        let engine = EvalEngine::serial();
        let cold = engine.simulate(&k, &gpu, &launch, 16, Some(2)).unwrap();
        let warm = engine.simulate(&k, &gpu, &launch, 16, Some(2)).unwrap();
        assert_eq!(cold, warm);
        let direct = crat_sim::simulate(&k, &gpu, &launch, 16, Some(2)).unwrap();
        assert_eq!(cold, direct, "engine result must match a direct simulation");
        let stats = engine.stats();
        assert_eq!(stats.sims_executed, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.requests(), 2);
        assert_eq!(stats.hit_rate(), 0.5);
        assert_eq!(engine.cache_len(), 1);
    }

    #[test]
    fn batch_preserves_submission_order() {
        let (k, gpu, launch) = setup();
        let engine = EvalEngine::new(4);
        let jobs: Vec<SimJob<'_>> = (1..=4)
            .map(|tlp| SimJob {
                kernel: &k,
                gpu: &gpu,
                launch: &launch,
                regs_per_thread: 16,
                tlp_cap: Some(tlp),
            })
            .collect();
        let parallel = engine.simulate_batch(&jobs);
        let serial: Vec<_> = jobs
            .iter()
            .map(|j| crat_sim::simulate(j.kernel, j.gpu, j.launch, j.regs_per_thread, j.tlp_cap))
            .collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn par_map_matches_serial_map() {
        let engine = EvalEngine::new(8);
        let items: Vec<u64> = (0..100).collect();
        let parallel = engine.par_map(&items, |&x| x * x + 1);
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn decoded_cache_is_shared_across_operating_points() {
        let (k, gpu, launch) = setup();
        let engine = EvalEngine::serial();
        for tlp in 1..=3 {
            engine.simulate(&k, &gpu, &launch, 16, Some(tlp)).unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.sims_executed, 3);
        assert_eq!(stats.decodes, 1, "a TLP sweep decodes the binary once");
        assert_eq!(engine.decoded_len(), 1);
        assert!(stats.sim_cycles > 0);
        assert!(stats.sim_insts > 0);
        assert!(stats.sim_insts_per_sec() > 0.0);
        assert!(stats.sim_cycles_per_sec() > 0.0);
        engine.reset();
        assert_eq!(engine.decoded_len(), 0);
    }

    #[test]
    fn throughput_counters_sum_executed_sims_only() {
        let (k, gpu, launch) = setup();
        let engine = EvalEngine::serial();
        let s = engine.simulate(&k, &gpu, &launch, 16, Some(2)).unwrap();
        // A cache hit adds nothing.
        engine.simulate(&k, &gpu, &launch, 16, Some(2)).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.sim_cycles, s.cycles);
        assert_eq!(stats.sim_insts, s.warp_insts);
    }

    #[test]
    fn reset_clears_cache_and_counters() {
        let (k, gpu, launch) = setup();
        let engine = EvalEngine::serial();
        engine.simulate(&k, &gpu, &launch, 16, Some(1)).unwrap();
        engine.reset();
        assert_eq!(engine.stats(), EngineStats::default());
        assert_eq!(engine.cache_len(), 0);
    }
}
