//! Interference-graph construction.
//!
//! Nodes are the allocatable virtual registers (everything except
//! predicates, which live in a separate register file on real GPUs).
//! Two registers interfere when one is defined while the other is
//! live; the classic move-instruction refinement (a copy's source does
//! not interfere with its destination) is applied so that copies can
//! share a register.
//!
//! The graph is stored twice, in forms tuned for the two ways the
//! allocator reads it:
//!
//! * a **dense bit-matrix** (one `u64` row stripe per node) answering
//!   [`interferes`](InterferenceGraph::interferes) in O(1) during edge
//!   insertion and membership tests; and
//! * **sorted adjacency lists** in one contiguous CSR arena, giving
//!   cache-friendly, deterministic iteration for the simplify/select
//!   phases, with plain and width-weighted degrees cached per node.
//!
//! Sorted adjacency is a determinism guarantee, not just a layout
//! choice: the earlier `Vec<HashSet<u32>>` representation iterated
//! neighbors in hash order, which is stable for a fixed standard
//! library but makes any order-sensitive consumer a latent
//! nondeterminism bug. Every iteration the allocator performs is now
//! in ascending register order by construction.

use crat_ptx::{Cfg, Instruction, Kernel, Liveness, Op, Operand, Type, VReg};

/// An undirected interference graph over a kernel's virtual registers.
#[derive(Debug, Clone)]
pub struct InterferenceGraph {
    /// Number of nodes (registers, including non-allocatable ones).
    n: usize,
    /// `u64` words per bit-matrix row.
    row_words: usize,
    /// Dense adjacency bit-matrix, row-major: bit `b` of row `a` is
    /// set iff `a` and `b` interfere.
    bits: Vec<u64>,
    /// CSR offsets into `adj`: node `v`'s neighbors are
    /// `adj[adj_off[v] .. adj_off[v + 1]]`, sorted ascending.
    adj_off: Vec<u32>,
    /// All adjacency lists, concatenated.
    adj: Vec<u32>,
    /// Cached neighbor counts.
    degrees: Vec<u32>,
    /// Cached width-weighted degrees (total register slots occupied by
    /// the neighbors).
    weighted_degrees: Vec<u32>,
    allocatable: Vec<bool>,
    widths: Vec<u32>,
}

impl InterferenceGraph {
    /// Build the graph from a kernel and its liveness solution.
    pub fn build(kernel: &Kernel, _cfg: &Cfg, liveness: &Liveness) -> InterferenceGraph {
        let n = kernel.num_regs();
        let row_words = n.div_ceil(64);
        let allocatable: Vec<bool> = (0..n)
            .map(|i| kernel.reg_ty(VReg(i as u32)) != Type::Pred)
            .collect();
        let widths: Vec<u32> = (0..n)
            .map(|i| kernel.reg_ty(VReg(i as u32)).reg_slots().max(1))
            .collect();
        let mut bits = vec![0u64; n * row_words];

        let mut add_edge = |a: VReg, b: VReg| {
            if a == b || !allocatable[a.index()] || !allocatable[b.index()] {
                return;
            }
            bits[a.index() * row_words + b.index() / 64] |= 1 << (b.index() % 64);
            bits[b.index() * row_words + a.index() / 64] |= 1 << (a.index() % 64);
        };

        let mut uses_buf = Vec::new();
        for block in kernel.blocks() {
            let mut live = liveness.live_out(block.id).clone();
            for inst in block.insts.iter().rev() {
                if let Some(d) = inst.def() {
                    let move_src = move_source(inst);
                    for l in live.iter() {
                        let l = VReg(l as u32);
                        if l != d && Some(l) != move_src {
                            add_edge(d, l);
                        }
                    }
                    if !inst.is_conditional_def() {
                        live.remove(d.index());
                    } else {
                        live.insert(d.index());
                    }
                }
                uses_buf.clear();
                inst.collect_uses(&mut uses_buf);
                for &u in &uses_buf {
                    live.insert(u.index());
                }
            }
        }

        // Freeze the bit-matrix into sorted CSR adjacency: scanning
        // each row's words low-to-high yields neighbors in ascending
        // register order, so no sort pass is needed.
        let mut adj_off = Vec::with_capacity(n + 1);
        let mut adj = Vec::new();
        let mut degrees = vec![0u32; n];
        let mut weighted_degrees = vec![0u32; n];
        adj_off.push(0u32);
        for v in 0..n {
            let row = &bits[v * row_words..(v + 1) * row_words];
            let mut wdeg = 0u32;
            for (w, &word) in row.iter().enumerate() {
                let mut rest = word;
                while rest != 0 {
                    let bit = rest.trailing_zeros() as usize;
                    let nb = w * 64 + bit;
                    adj.push(nb as u32);
                    wdeg += widths[nb];
                    rest &= rest - 1;
                }
            }
            degrees[v] = adj.len() as u32 - adj_off[v];
            weighted_degrees[v] = wdeg;
            adj_off.push(adj.len() as u32);
        }

        InterferenceGraph {
            n,
            row_words,
            bits,
            adj_off,
            adj,
            degrees,
            weighted_degrees,
            allocatable,
            widths,
        }
    }

    /// Number of registers (nodes, including non-allocatable ones).
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Whether `v` participates in coloring.
    pub fn is_allocatable(&self, v: VReg) -> bool {
        self.allocatable.get(v.index()).copied().unwrap_or(false)
    }

    /// The register-slot width of `v` (1 or 2).
    pub fn width(&self, v: VReg) -> u32 {
        self.widths[v.index()]
    }

    /// Whether `a` and `b` interfere (one bit-matrix probe).
    pub fn interferes(&self, a: VReg, b: VReg) -> bool {
        self.bits[a.index() * self.row_words + b.index() / 64] & (1 << (b.index() % 64)) != 0
    }

    /// The neighbors of `v`, in ascending register order.
    pub fn neighbors(&self, v: VReg) -> impl Iterator<Item = VReg> + '_ {
        self.neighbor_ids(v).iter().map(|&i| VReg(i))
    }

    /// The sorted adjacency list of `v` as raw register ids.
    pub fn neighbor_ids(&self, v: VReg) -> &[u32] {
        let (lo, hi) = (
            self.adj_off[v.index()] as usize,
            self.adj_off[v.index() + 1] as usize,
        );
        &self.adj[lo..hi]
    }

    /// Plain degree of `v` (neighbor count), cached.
    pub fn degree(&self, v: VReg) -> usize {
        self.degrees[v.index()] as usize
    }

    /// Width-weighted degree: the number of register *slots* the
    /// neighbors of `v` occupy, cached. A node is trivially colorable
    /// with budget `k` when `weighted_degree + width <= k` (Briggs'
    /// conservative test generalized to aliased/wide registers).
    pub fn weighted_degree(&self, v: VReg) -> u32 {
        self.weighted_degrees[v.index()]
    }

    /// Width-weighted degree counting only neighbors still present in
    /// `alive` (used during simplification).
    pub fn weighted_degree_among(&self, v: VReg, alive: &[bool]) -> u32 {
        self.neighbor_ids(v)
            .iter()
            .filter(|&&i| alive[i as usize])
            .map(|&i| self.widths[i as usize])
            .sum()
    }

    /// Verify the internal invariants tying the two representations
    /// together; used by the property-test suite.
    ///
    /// # Errors
    ///
    /// A description of the first violated invariant.
    pub fn check_consistency(&self) -> Result<(), String> {
        if self.adj_off.len() != self.n + 1 {
            return Err(format!(
                "adj_off has {} entries for {} nodes",
                self.adj_off.len(),
                self.n
            ));
        }
        for v in 0..self.n {
            let v_reg = VReg(v as u32);
            let list = self.neighbor_ids(v_reg);
            if !list.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("adjacency of r{v} is not sorted/deduplicated"));
            }
            if list.len() != self.degrees[v] as usize {
                return Err(format!("cached degree of r{v} disagrees with adjacency"));
            }
            let wdeg: u32 = list.iter().map(|&i| self.widths[i as usize]).sum();
            if wdeg != self.weighted_degrees[v] {
                return Err(format!("cached weighted degree of r{v} is stale"));
            }
            let row_pop: usize = self.bits[v * self.row_words..(v + 1) * self.row_words]
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum();
            if row_pop != list.len() {
                return Err(format!(
                    "bit-matrix row of r{v} has {row_pop} bits but {} neighbors",
                    list.len()
                ));
            }
            for &nb in list {
                let nb_reg = VReg(nb);
                if nb_reg == v_reg {
                    return Err(format!("r{v} is its own neighbor"));
                }
                if !self.interferes(v_reg, nb_reg) || !self.interferes(nb_reg, v_reg) {
                    return Err(format!(
                        "edge (r{v}, r{nb}) in adjacency but not symmetric in the bit-matrix"
                    ));
                }
                if !self.allocatable[v] || !self.allocatable[nb as usize] {
                    return Err(format!("edge (r{v}, r{nb}) touches a non-allocatable node"));
                }
            }
        }
        Ok(())
    }
}

/// For `mov dst, src` with a register source, the source register.
fn move_source(inst: &Instruction) -> Option<VReg> {
    match &inst.op {
        Op::Mov {
            src: Operand::Reg(s),
            ..
        } => Some(*s),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crat_ptx::{BlockId, KernelBuilder, Operand, Type};

    fn graph_of(kernel: &Kernel) -> InterferenceGraph {
        let cfg = Cfg::build(kernel);
        let lv = Liveness::compute(kernel, &cfg);
        InterferenceGraph::build(kernel, &cfg, &lv)
    }

    #[test]
    fn simultaneously_live_values_interfere() {
        let mut b = KernelBuilder::new("k");
        let x = b.mov(Type::U32, Operand::Imm(1));
        let y = b.mov(Type::U32, Operand::Imm(2));
        let _z = b.add(Type::U32, x, y);
        let k = b.finish();
        let g = graph_of(&k);
        assert!(g.interferes(x, y));
        assert!(g.interferes(y, x));
    }

    #[test]
    fn sequential_values_do_not_interfere() {
        // x dies producing y; y dies producing z.
        let mut b = KernelBuilder::new("k");
        let x = b.mov(Type::U32, Operand::Imm(1));
        let y = b.add(Type::U32, x, Operand::Imm(1));
        let z = b.add(Type::U32, y, Operand::Imm(1));
        let k = b.finish();
        let g = graph_of(&k);
        assert!(!g.interferes(x, z));
        assert!(!g.interferes(x, y) || !g.interferes(x, y));
        assert_eq!(g.degree(z), 0);
    }

    #[test]
    fn move_source_does_not_interfere_with_dest() {
        let mut b = KernelBuilder::new("k");
        let x = b.mov(Type::U32, Operand::Imm(1));
        let y = b.mov(Type::U32, x); // y = x, then both used
        let _u = b.add(Type::U32, x, y);
        let k = b.finish();
        let g = graph_of(&k);
        // Even though x stays live past the copy, sharing a register
        // with y is safe: y holds a copy of x's value, so the classic
        // Chaitin refinement omits the edge.
        assert!(!g.interferes(x, y));
    }

    #[test]
    fn copy_of_dying_value_shares_register() {
        let mut b = KernelBuilder::new("k");
        let x = b.mov(Type::U32, Operand::Imm(1));
        let y = b.mov(Type::U32, x); // x dies here
        let _u = b.add(Type::U32, y, Operand::Imm(1));
        let k = b.finish();
        let g = graph_of(&k);
        assert!(!g.interferes(x, y));
    }

    #[test]
    fn predicates_are_not_allocatable() {
        let mut b = KernelBuilder::new("k");
        let x = b.mov(Type::U32, Operand::Imm(1));
        let p = b.setp(crat_ptx::CmpOp::Lt, Type::U32, x, Operand::Imm(5));
        let _s = b.selp(Type::U32, x, Operand::Imm(0), p);
        let k = b.finish();
        let g = graph_of(&k);
        assert!(!g.is_allocatable(p));
        assert!(g.is_allocatable(x));
        assert_eq!(g.degree(p), 0);
    }

    #[test]
    fn wide_registers_report_width_two() {
        let mut b = KernelBuilder::new("k");
        let a = b.mov(Type::U64, Operand::Imm(0));
        let c = b.mov(Type::U64, Operand::Imm(1));
        let _d = b.add(Type::U64, a, c);
        let k = b.finish();
        let g = graph_of(&k);
        assert_eq!(g.width(a), 2);
        assert_eq!(g.weighted_degree(a), 2); // one u64 neighbor
    }

    #[test]
    fn loop_carried_interference() {
        let mut b = KernelBuilder::new("k");
        let acc = b.mov(Type::U32, Operand::Imm(0));
        let l = b.loop_range(0, Operand::Imm(8), 1);
        let t = b.mul(Type::U32, l.counter, Operand::Imm(3));
        b.binary_to(crat_ptx::BinOp::Add, Type::U32, acc, acc, t);
        b.end_loop(l);
        let out = b.fresh(Type::U32);
        b.mov_to(Type::U32, out, acc);
        let k = b.finish();
        let g = graph_of(&k);
        // The accumulator is live around the loop: it must interfere
        // with the loop counter.
        assert!(g.interferes(acc, l.counter));
    }

    #[test]
    fn weighted_degree_among_respects_removals() {
        let mut b = KernelBuilder::new("k");
        let x = b.mov(Type::U32, Operand::Imm(1));
        let y = b.mov(Type::U32, Operand::Imm(2));
        let z = b.mov(Type::U32, Operand::Imm(3));
        let _s1 = b.add(Type::U32, x, y);
        let _s2 = b.add(Type::U32, y, z);
        let _s3 = b.add(Type::U32, x, z);
        let k = b.finish();
        let g = graph_of(&k);
        let mut alive = vec![true; g.num_nodes()];
        let before = g.weighted_degree_among(x, &alive);
        alive[y.index()] = false;
        let after = g.weighted_degree_among(x, &alive);
        assert!(after < before);
        let _ = BlockId(0);
    }

    #[test]
    fn neighbors_are_sorted_and_consistent() {
        let mut b = KernelBuilder::new("k");
        let vs: Vec<VReg> = (0..12).map(|i| b.mov(Type::U32, Operand::Imm(i))).collect();
        let mut acc = vs[0];
        for &v in &vs[1..] {
            acc = b.add(Type::U32, acc, v);
        }
        let k = b.finish();
        let g = graph_of(&k);
        g.check_consistency().unwrap();
        // Every pairwise-live pair interferes; adjacency is ascending.
        let ids = g.neighbor_ids(vs[0]);
        assert!(!ids.is_empty());
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(g.degree(vs[0]), ids.len());
    }
}
