//! Scalar types, state spaces, and operator kinds of the PTX subset.

use std::fmt;

/// A scalar PTX type.
///
/// The subset covers the types the CRAT paper's kernels use: 32- and
/// 64-bit integers, single/double floats, and predicates. Predicate
/// registers live in a separate register class on real hardware and do
/// not count toward the per-thread register budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// 32-bit unsigned integer (`.u32`).
    U32,
    /// 32-bit signed integer (`.s32`).
    S32,
    /// 64-bit unsigned integer (`.u64`), also used for addresses.
    U64,
    /// 32-bit IEEE float (`.f32`).
    F32,
    /// 64-bit IEEE float (`.f64`).
    F64,
    /// 1-bit predicate (`.pred`).
    Pred,
}

impl Type {
    /// Size of a value of this type in bytes (predicates count as 1).
    pub fn size_bytes(self) -> u32 {
        match self {
            Type::U32 | Type::S32 | Type::F32 => 4,
            Type::U64 | Type::F64 => 8,
            Type::Pred => 1,
        }
    }

    /// Number of 32-bit register slots a value of this type occupies.
    ///
    /// Predicates occupy zero general-purpose slots: hardware keeps
    /// them in a dedicated predicate register file.
    pub fn reg_slots(self) -> u32 {
        match self {
            Type::U32 | Type::S32 | Type::F32 => 1,
            Type::U64 | Type::F64 => 2,
            Type::Pred => 0,
        }
    }

    /// Whether this is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, Type::F32 | Type::F64)
    }

    /// Whether this is an integer type (signed or unsigned, any width).
    pub fn is_int(self) -> bool {
        matches!(self, Type::U32 | Type::S32 | Type::U64)
    }

    /// The PTX suffix for this type, without the leading dot.
    pub fn suffix(self) -> &'static str {
        match self {
            Type::U32 => "u32",
            Type::S32 => "s32",
            Type::U64 => "u64",
            Type::F32 => "f32",
            Type::F64 => "f64",
            Type::Pred => "pred",
        }
    }

    /// Parse a PTX type suffix (`"u32"`, `"f64"`, ...).
    pub fn from_suffix(s: &str) -> Option<Type> {
        Some(match s {
            "u32" => Type::U32,
            "s32" => Type::S32,
            "u64" => Type::U64,
            "f32" => Type::F32,
            "f64" => Type::F64,
            "pred" => Type::Pred,
            _ => return None,
        })
    }

    /// All types of the subset, for exhaustive tests.
    pub fn all() -> [Type; 6] {
        [
            Type::U32,
            Type::S32,
            Type::U64,
            Type::F32,
            Type::F64,
            Type::Pred,
        ]
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".{}", self.suffix())
    }
}

/// A PTX state space for loads and stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// Off-chip global memory (`.global`), cached in L1/L2.
    Global,
    /// Per-thread local memory (`.local`) — off-chip, used for spills.
    Local,
    /// On-chip software-managed shared memory (`.shared`).
    Shared,
    /// Kernel parameter space (`.param`).
    Param,
}

impl Space {
    /// The PTX suffix for this space, without the leading dot.
    pub fn suffix(self) -> &'static str {
        match self {
            Space::Global => "global",
            Space::Local => "local",
            Space::Shared => "shared",
            Space::Param => "param",
        }
    }

    /// Parse a PTX space suffix.
    pub fn from_suffix(s: &str) -> Option<Space> {
        Some(match s {
            "global" => Space::Global,
            "local" => Space::Local,
            "shared" => Space::Shared,
            "param" => Space::Param,
            _ => return None,
        })
    }
}

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".{}", self.suffix())
    }
}

/// Binary arithmetic and logical operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `add` — addition.
    Add,
    /// `sub` — subtraction.
    Sub,
    /// `mul.lo` — low half of the product.
    Mul,
    /// `div` — division (expensive; executes on the SFU path).
    Div,
    /// `rem` — remainder/modulo.
    Rem,
    /// `min` — minimum.
    Min,
    /// `max` — maximum.
    Max,
    /// `and` — bitwise and.
    And,
    /// `or` — bitwise or.
    Or,
    /// `xor` — bitwise xor.
    Xor,
    /// `shl` — shift left.
    Shl,
    /// `shr` — shift right (logical for unsigned, arithmetic for signed).
    Shr,
}

impl BinOp {
    /// PTX mnemonic (the `mul.lo` form prints its `.lo` qualifier
    /// in the printer, not here).
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        }
    }

    /// All binary operators, for exhaustive tests.
    pub fn all() -> [BinOp; 12] {
        [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
            BinOp::Min,
            BinOp::Max,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::Shr,
        ]
    }
}

/// Unary operators, including the transcendental SFU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `neg` — arithmetic negation.
    Neg,
    /// `not` — bitwise complement.
    Not,
    /// `abs` — absolute value.
    Abs,
    /// `sqrt.approx` — square root (SFU).
    Sqrt,
    /// `rsqrt.approx` — reciprocal square root (SFU).
    Rsqrt,
    /// `ex2.approx` — base-2 exponential (SFU).
    Ex2,
    /// `lg2.approx` — base-2 logarithm (SFU).
    Lg2,
    /// `sin.approx` — sine (SFU).
    Sin,
    /// `cos.approx` — cosine (SFU).
    Cos,
    /// `rcp.approx` — reciprocal (SFU).
    Rcp,
}

impl UnOp {
    /// PTX mnemonic without approximation qualifiers.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::Abs => "abs",
            UnOp::Sqrt => "sqrt",
            UnOp::Rsqrt => "rsqrt",
            UnOp::Ex2 => "ex2",
            UnOp::Lg2 => "lg2",
            UnOp::Sin => "sin",
            UnOp::Cos => "cos",
            UnOp::Rcp => "rcp",
        }
    }

    /// Whether this operation executes on the special function unit.
    pub fn is_sfu(self) -> bool {
        !matches!(self, UnOp::Neg | UnOp::Not | UnOp::Abs)
    }

    /// All unary operators, for exhaustive tests.
    pub fn all() -> [UnOp; 10] {
        [
            UnOp::Neg,
            UnOp::Not,
            UnOp::Abs,
            UnOp::Sqrt,
            UnOp::Rsqrt,
            UnOp::Ex2,
            UnOp::Lg2,
            UnOp::Sin,
            UnOp::Cos,
            UnOp::Rcp,
        ]
    }
}

/// Comparison operators for `setp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `eq` — equal.
    Eq,
    /// `ne` — not equal.
    Ne,
    /// `lt` — less than.
    Lt,
    /// `le` — less than or equal.
    Le,
    /// `gt` — greater than.
    Gt,
    /// `ge` — greater than or equal.
    Ge,
}

impl CmpOp {
    /// PTX comparison qualifier.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }

    /// Parse a PTX comparison qualifier.
    pub fn from_mnemonic(s: &str) -> Option<CmpOp> {
        Some(match s {
            "eq" => CmpOp::Eq,
            "ne" => CmpOp::Ne,
            "lt" => CmpOp::Lt,
            "le" => CmpOp::Le,
            "gt" => CmpOp::Gt,
            "ge" => CmpOp::Ge,
            _ => return None,
        })
    }

    /// The comparison with operand order swapped (`a op b` ⇔ `b swap(op) a`).
    pub fn swapped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// All comparison operators, for exhaustive tests.
    pub fn all() -> [CmpOp; 6] {
        [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_sizes_match_slots() {
        for ty in Type::all() {
            if ty == Type::Pred {
                assert_eq!(ty.reg_slots(), 0);
            } else {
                assert_eq!(ty.reg_slots() * 4, ty.size_bytes());
            }
        }
    }

    #[test]
    fn type_suffix_round_trip() {
        for ty in Type::all() {
            assert_eq!(Type::from_suffix(ty.suffix()), Some(ty));
        }
        assert_eq!(Type::from_suffix("b128"), None);
    }

    #[test]
    fn space_suffix_round_trip() {
        for sp in [Space::Global, Space::Local, Space::Shared, Space::Param] {
            assert_eq!(Space::from_suffix(sp.suffix()), Some(sp));
        }
    }

    #[test]
    fn cmp_swap_is_involution() {
        for op in CmpOp::all() {
            assert_eq!(op.swapped().swapped(), op);
        }
    }

    #[test]
    fn cmp_mnemonic_round_trip() {
        for op in CmpOp::all() {
            assert_eq!(CmpOp::from_mnemonic(op.mnemonic()), Some(op));
        }
    }

    #[test]
    fn sfu_classification() {
        assert!(UnOp::Sqrt.is_sfu());
        assert!(UnOp::Sin.is_sfu());
        assert!(!UnOp::Neg.is_sfu());
        assert!(!UnOp::Not.is_sfu());
    }

    #[test]
    fn float_int_classification_is_partition() {
        for ty in Type::all() {
            let classes = usize::from(ty.is_float())
                + usize::from(ty.is_int())
                + usize::from(ty == Type::Pred);
            assert_eq!(classes, 1, "{ty:?} must be in exactly one class");
        }
    }
}
