//! The `Strategy` trait and the combinators this workspace uses.

use std::marker::PhantomData;
use std::ops::Range;

use crate::test_runner::TestRng;

/// A generator of values for property tests.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy simply produces a value from the runner's RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erase the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A uniform choice between same-valued strategies (see `prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// A union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($ty:ty),+) => {
        $(impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        })+
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Any bit pattern, NaN and infinities included — real proptest
        // explores the full domain too.
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! range_strategy {
    ($($ty:ty),+) => {
        $(impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        })+
    };
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {
        $(impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        })+
    };
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3u32..17).generate(&mut r);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..2.0).generate(&mut r);
            assert!((-2.0..2.0).contains(&f));
            let i = (-50i64..-10).generate(&mut r);
            assert!((-50..-10).contains(&i));
        }
    }

    #[test]
    fn map_and_boxed_compose() {
        let s = (0u8..10).prop_map(|v| v as u32 * 2).boxed();
        let mut r = rng();
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn union_picks_every_arm() {
        let u = Union::new(vec![(0u32..1).boxed(), (10u32..11).boxed()]);
        let mut r = rng();
        let vals: Vec<u32> = (0..100).map(|_| u.generate(&mut r)).collect();
        assert!(vals.contains(&0) && vals.contains(&10));
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut r = rng();
        let (a, b, c) = ((0u8..5), (5u8..9), any::<bool>()).generate(&mut r);
        assert!(a < 5 && (5..9).contains(&b));
        let _: bool = c;
    }
}
