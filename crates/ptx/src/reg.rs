//! Virtual registers, special (built-in) registers, and predication guards.

use std::fmt;

/// A virtual register identifier.
///
/// PTX uses an SSA-like style with an unbounded virtual register set;
/// the register's type is recorded in the owning [`Kernel`]'s register
/// table, not in the id itself.
///
/// [`Kernel`]: crate::Kernel
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u32);

impl VReg {
    /// The register's index, usable into per-register tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%v{}", self.0)
    }
}

/// A built-in read-only special register.
///
/// Only the `.x` dimension is modeled; the paper's kernels (and our
/// synthetic workloads) use one-dimensional launches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecialReg {
    /// `%tid.x` — thread index within the block.
    TidX,
    /// `%ntid.x` — number of threads per block.
    NtidX,
    /// `%ctaid.x` — block index within the grid.
    CtaidX,
    /// `%nctaid.x` — number of blocks in the grid.
    NctaidX,
    /// `%laneid` — lane index within the warp.
    LaneId,
    /// `%warpid` — warp index within the block.
    WarpId,
}

impl SpecialReg {
    /// The PTX spelling of this special register.
    pub fn name(self) -> &'static str {
        match self {
            SpecialReg::TidX => "%tid.x",
            SpecialReg::NtidX => "%ntid.x",
            SpecialReg::CtaidX => "%ctaid.x",
            SpecialReg::NctaidX => "%nctaid.x",
            SpecialReg::LaneId => "%laneid",
            SpecialReg::WarpId => "%warpid",
        }
    }

    /// Parse a PTX special register name (with the leading `%`).
    pub fn from_name(s: &str) -> Option<SpecialReg> {
        Some(match s {
            "%tid.x" => SpecialReg::TidX,
            "%ntid.x" => SpecialReg::NtidX,
            "%ctaid.x" => SpecialReg::CtaidX,
            "%nctaid.x" => SpecialReg::NctaidX,
            "%laneid" => SpecialReg::LaneId,
            "%warpid" => SpecialReg::WarpId,
            _ => return None,
        })
    }

    /// All special registers, for exhaustive tests.
    pub fn all() -> [SpecialReg; 6] {
        [
            SpecialReg::TidX,
            SpecialReg::NtidX,
            SpecialReg::CtaidX,
            SpecialReg::NctaidX,
            SpecialReg::LaneId,
            SpecialReg::WarpId,
        ]
    }
}

impl fmt::Display for SpecialReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A predication guard on an instruction (`@%p` or `@!%p`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Guard {
    /// The predicate register tested.
    pub pred: VReg,
    /// If `true` the guard is negated (`@!%p`): the instruction
    /// executes when the predicate is false.
    pub negated: bool,
}

impl Guard {
    /// A guard that fires when `pred` is true.
    pub fn when(pred: VReg) -> Guard {
        Guard {
            pred,
            negated: false,
        }
    }

    /// A guard that fires when `pred` is false.
    pub fn unless(pred: VReg) -> Guard {
        Guard {
            pred,
            negated: true,
        }
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            write!(f, "@!{}", self.pred)
        } else {
            write!(f, "@{}", self.pred)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_reg_name_round_trip() {
        for sr in SpecialReg::all() {
            assert_eq!(SpecialReg::from_name(sr.name()), Some(sr));
        }
        assert_eq!(SpecialReg::from_name("%tid.y"), None);
    }

    #[test]
    fn guard_display() {
        let g = Guard::when(VReg(3));
        assert_eq!(g.to_string(), "@%v3");
        let g = Guard::unless(VReg(3));
        assert_eq!(g.to_string(), "@!%v3");
    }

    #[test]
    fn vreg_ordering_follows_index() {
        assert!(VReg(1) < VReg(2));
        assert_eq!(VReg(7).index(), 7);
    }
}
