//! Strategy-roster overhead and payoff: the pinned single-strategy
//! sweep (`Pinned(Briggs)`, the pre-roster pipeline) vs the full
//! default roster (Briggs, min-reg scheduling + Briggs, and SSA spill
//! minimization competing at every design point).
//!
//! The workload is the full 22-app suite run end to end through
//! `optimize_with` with a fixed `OptTLP` (so no profiling simulations
//! dilute the allocation cost being measured). The vendored Criterion
//! stand-in only reports mean wall time, so this bench additionally
//! prints explicit `points/sec` lines and the per-strategy win
//! counters — the numbers recorded in `BENCH_alloc_strategies.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

use crat_core::{
    optimize_with, AllocStrategy, CratOptions, EvalEngine, OptTlpSource, StrategyRoster,
};
use crat_ptx::Kernel;
use crat_sim::{GpuConfig, LaunchConfig};
use crat_workloads::{build_kernel, launch_sized, suite};

const GRID_BLOCKS: u32 = 30;
const REPS: u32 = 3;
/// A fixed TLP cap keeps the profiling stage out of the measurement.
const OPT_TLP: u32 = 4;

fn workload() -> Vec<(Kernel, LaunchConfig)> {
    suite::all()
        .map(|app| (build_kernel(app), launch_sized(app, GRID_BLOCKS)))
        .collect()
}

fn options(roster: StrategyRoster) -> CratOptions {
    CratOptions {
        opt_tlp: OptTlpSource::Given(OPT_TLP),
        roster,
        ..CratOptions::new()
    }
}

/// One full-suite optimization pass; returns candidate points evaluated.
fn suite_pass(engine: &EvalEngine, work: &[(Kernel, LaunchConfig)], opts: &CratOptions) -> u64 {
    let gpu = GpuConfig::fermi();
    let mut points = 0u64;
    for (kernel, launch) in work {
        let sol = optimize_with(engine, black_box(kernel), &gpu, launch, opts)
            .unwrap_or_else(|e| panic!("optimize failed: {e}"));
        points += sol.candidates.len() as u64;
    }
    points
}

/// Run the sweep `REPS` times and print throughput.
fn measure(label: &str, work: &[(Kernel, LaunchConfig)], opts: &CratOptions) -> (f64, u64) {
    // A fresh engine per arm: the memo and context caches warm up
    // inside the measurement the same way for both rosters.
    let engine = EvalEngine::new(2);
    let start = Instant::now();
    let mut points = 0u64;
    for _ in 0..REPS {
        points += suite_pass(&engine, work, opts);
    }
    let secs = start.elapsed().as_secs_f64();
    println!(
        "{label:<40} points/sec {:.3e}  ({points} candidate points, {secs:.3}s)",
        points as f64 / secs,
    );
    let stats = engine.stats();
    for kind in AllocStrategy::ALL {
        let s = stats.strategies[kind.index()];
        if s.attempts > 0 {
            println!(
                "{label:<40}   {} wins/attempts {}/{} (ctx reuse {})",
                kind.label(),
                s.wins,
                s.attempts,
                s.ctx_reuse
            );
        }
    }
    (secs, points)
}

fn bench_alloc_strategies(c: &mut Criterion) {
    let work = workload();
    println!("alloc_strategies: {} apps, OptTLP={OPT_TLP}", work.len());

    let pinned = options(StrategyRoster::Pinned(AllocStrategy::Briggs));
    let roster = options(StrategyRoster::Default);

    // Warm up allocators and page tables.
    suite_pass(&EvalEngine::new(2), &work, &roster);

    let (pinned_s, pinned_n) = measure("alloc_strategies/pinned_briggs", &work, &pinned);
    let (roster_s, roster_n) = measure("alloc_strategies/default_roster", &work, &roster);
    assert_eq!(pinned_n, roster_n, "arms must evaluate the same points");
    println!(
        "alloc_strategies/roster_cost             {:.2}x (roster over pinned)",
        roster_s / pinned_s
    );

    // Mean-time entries so regressions show in the Criterion report.
    let e_pinned = EvalEngine::new(2);
    c.bench_function("alloc_strategies/pinned_suite_pass", |b| {
        b.iter(|| black_box(suite_pass(&e_pinned, &work, &pinned)))
    });
    let e_roster = EvalEngine::new(2);
    c.bench_function("alloc_strategies/roster_suite_pass", |b| {
        b.iter(|| black_box(suite_pass(&e_roster, &work, &roster)))
    });
}

criterion_group!(benches, bench_alloc_strategies);
criterion_main!(benches);
