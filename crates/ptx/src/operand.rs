//! Instruction operands and memory addresses.

use std::fmt;

use crate::reg::{SpecialReg, VReg};

/// A source operand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// A virtual register.
    Reg(VReg),
    /// An integer immediate (stored sign-extended).
    Imm(i64),
    /// A floating-point immediate.
    FImm(f64),
    /// A built-in special register (`%tid.x`, ...).
    Special(SpecialReg),
}

/// Structural hashing: floats hash by bit pattern so that equal IR
/// always hashes equally (the simulation memo cache depends on it).
impl std::hash::Hash for Operand {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Operand::Reg(r) => r.hash(state),
            Operand::Imm(v) => v.hash(state),
            Operand::FImm(v) => v.to_bits().hash(state),
            Operand::Special(sr) => sr.hash(state),
        }
    }
}

impl Operand {
    /// The register this operand reads, if any.
    pub fn as_reg(&self) -> Option<VReg> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }

    /// Whether this operand is a compile-time constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Operand::Imm(_) | Operand::FImm(_))
    }
}

impl From<VReg> for Operand {
    fn from(r: VReg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Operand {
        Operand::Imm(v)
    }
}

impl From<f64> for Operand {
    fn from(v: f64) -> Operand {
        Operand::FImm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
            // Print floats as exact bit patterns so parsing round-trips
            // (including NaN/inf payloads).
            Operand::FImm(v) => write!(f, "0f{}", f64_bits_hex(*v)),
            Operand::Special(sr) => write!(f, "{sr}"),
        }
    }
}

/// Hex encoding of an `f64`'s bits, PTX `0f`/`0d` style (we always use
/// 64-bit bits for exactness).
fn f64_bits_hex(v: f64) -> String {
    format!("{:016X}", v.to_bits())
}

/// Parse the hex bit pattern printed by [`Operand::FImm`]'s `Display`.
#[cfg(test)]
pub(crate) fn f64_from_bits_hex(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

/// The base of a memory address.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AddrBase {
    /// An address held in a (64-bit) register.
    Reg(VReg),
    /// A named kernel variable (a `.shared` or `.local` array), as in
    /// `st.local.u32 [SpillStack], %r0`.
    Var(String),
    /// A kernel parameter, for `ld.param`.
    Param(String),
}

/// A memory address: a base plus a constant byte offset.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Address {
    /// The address base.
    pub base: AddrBase,
    /// Constant byte offset added to the base.
    pub offset: i64,
}

impl Address {
    /// Address through a register base with no offset.
    pub fn reg(base: VReg) -> Address {
        Address {
            base: AddrBase::Reg(base),
            offset: 0,
        }
    }

    /// Address through a register base plus a byte offset.
    pub fn reg_offset(base: VReg, offset: i64) -> Address {
        Address {
            base: AddrBase::Reg(base),
            offset,
        }
    }

    /// Address of a named kernel variable plus a byte offset.
    pub fn var(name: impl Into<String>, offset: i64) -> Address {
        Address {
            base: AddrBase::Var(name.into()),
            offset,
        }
    }

    /// Address of a kernel parameter (for `ld.param`).
    pub fn param(name: impl Into<String>) -> Address {
        Address {
            base: AddrBase::Param(name.into()),
            offset: 0,
        }
    }

    /// The register this address reads, if its base is a register.
    pub fn base_reg(&self) -> Option<VReg> {
        match self.base {
            AddrBase::Reg(r) => Some(r),
            _ => None,
        }
    }
}

impl From<VReg> for Address {
    /// Address through a (64-bit) register base with zero offset.
    fn from(r: VReg) -> Address {
        Address::reg(r)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let base = match &self.base {
            AddrBase::Reg(r) => r.to_string(),
            AddrBase::Var(name) | AddrBase::Param(name) => name.clone(),
        };
        if self.offset == 0 {
            write!(f, "[{base}]")
        } else if self.offset > 0 {
            write!(f, "[{base}+{}]", self.offset)
        } else {
            write!(f, "[{base}{}]", self.offset)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_conversions() {
        assert_eq!(Operand::from(VReg(2)), Operand::Reg(VReg(2)));
        assert_eq!(Operand::from(5i64), Operand::Imm(5));
        assert!(Operand::from(1.5f64).is_const());
        assert_eq!(Operand::Reg(VReg(1)).as_reg(), Some(VReg(1)));
        assert_eq!(Operand::Imm(0).as_reg(), None);
    }

    #[test]
    fn fimm_hex_round_trip() {
        for v in [0.0, -1.5, 3.25e10, f64::MIN_POSITIVE] {
            let shown = Operand::FImm(v).to_string();
            let hex = shown.strip_prefix("0f").unwrap();
            assert_eq!(f64_from_bits_hex(hex), Some(v));
        }
    }

    #[test]
    fn address_display() {
        assert_eq!(Address::reg(VReg(0)).to_string(), "[%v0]");
        assert_eq!(Address::reg_offset(VReg(0), 8).to_string(), "[%v0+8]");
        assert_eq!(Address::reg_offset(VReg(0), -4).to_string(), "[%v0-4]");
        assert_eq!(Address::var("SpillStack", 4).to_string(), "[SpillStack+4]");
    }

    #[test]
    fn address_base_reg() {
        assert_eq!(Address::reg(VReg(9)).base_reg(), Some(VReg(9)));
        assert_eq!(Address::var("a", 0).base_reg(), None);
    }
}
