//! Instructions of the PTX subset.

use std::fmt;

use crate::operand::{AddrBase, Address, Operand};
use crate::reg::{Guard, SpecialReg, VReg};
use crate::types::{BinOp, CmpOp, Space, Type, UnOp};

/// The operation performed by an [`Instruction`].
///
/// Every operation defines at most one register. Branches are not
/// instructions: they live in each block's [`Terminator`].
///
/// [`Terminator`]: crate::Terminator
#[derive(Debug, Clone, PartialEq, Hash)]
pub enum Op {
    /// `mov.<ty> dst, src` — copy a value (or read a special register,
    /// or take the address of a kernel variable via [`Op::MovVarAddr`]).
    Mov { ty: Type, dst: VReg, src: Operand },
    /// `mov.u64 dst, Var` — materialize the address of a named
    /// `.shared`/`.local` variable, as in the paper's Listing 4
    /// (`mov.u64 %d0, SpillStack`).
    MovVarAddr { dst: VReg, var: String },
    /// `op.<ty> dst, a` — unary arithmetic (SFU operations included).
    Unary {
        op: UnOp,
        ty: Type,
        dst: VReg,
        src: Operand,
    },
    /// `op.<ty> dst, a, b` — binary arithmetic/logic.
    Binary {
        op: BinOp,
        ty: Type,
        dst: VReg,
        a: Operand,
        b: Operand,
    },
    /// `mad.lo.<ty> dst, a, b, c` — multiply-add (`dst = a*b + c`).
    Mad {
        ty: Type,
        dst: VReg,
        a: Operand,
        b: Operand,
        c: Operand,
    },
    /// `fma.rn.<ty> dst, a, b, c` — fused multiply-add for floats.
    Fma {
        ty: Type,
        dst: VReg,
        a: Operand,
        b: Operand,
        c: Operand,
    },
    /// `cvt.<dst_ty>.<src_ty> dst, src` — type conversion.
    Cvt {
        dst_ty: Type,
        src_ty: Type,
        dst: VReg,
        src: Operand,
    },
    /// `ld.<space>.<ty> dst, [addr]` — load.
    Ld {
        space: Space,
        ty: Type,
        dst: VReg,
        addr: Address,
    },
    /// `st.<space>.<ty> [addr], src` — store.
    St {
        space: Space,
        ty: Type,
        addr: Address,
        src: Operand,
    },
    /// `setp.<cmp>.<ty> dst, a, b` — compare, producing a predicate.
    Setp {
        cmp: CmpOp,
        ty: Type,
        dst: VReg,
        a: Operand,
        b: Operand,
    },
    /// `selp.<ty> dst, a, b, pred` — select `a` if `pred` else `b`.
    Selp {
        ty: Type,
        dst: VReg,
        a: Operand,
        b: Operand,
        pred: VReg,
    },
    /// `bar.sync 0` — block-wide barrier.
    BarSync,
}

/// A (possibly guarded) instruction.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct Instruction {
    /// Optional predication guard (`@%p` / `@!%p`).
    pub guard: Option<Guard>,
    /// The operation.
    pub op: Op,
}

/// How a register appears in an instruction, for [`Instruction::map_regs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegAccess {
    /// The register is written.
    Def,
    /// The register is read.
    Use,
}

impl Instruction {
    /// An unguarded instruction.
    pub fn new(op: Op) -> Instruction {
        Instruction { guard: None, op }
    }

    /// A guarded instruction.
    pub fn guarded(guard: Guard, op: Op) -> Instruction {
        Instruction {
            guard: Some(guard),
            op,
        }
    }

    /// The register defined by this instruction, if any.
    ///
    /// A guarded instruction's definition is conditional, but for
    /// liveness purposes it is still treated as a def *and* the old
    /// value stays live; callers handling guards must consult
    /// [`Instruction::is_conditional_def`].
    pub fn def(&self) -> Option<VReg> {
        match &self.op {
            Op::Mov { dst, .. }
            | Op::MovVarAddr { dst, .. }
            | Op::Unary { dst, .. }
            | Op::Binary { dst, .. }
            | Op::Mad { dst, .. }
            | Op::Fma { dst, .. }
            | Op::Cvt { dst, .. }
            | Op::Ld { dst, .. }
            | Op::Setp { dst, .. }
            | Op::Selp { dst, .. } => Some(*dst),
            Op::St { .. } | Op::BarSync => None,
        }
    }

    /// Whether the def only happens conditionally (guarded def): the
    /// previous value of the destination may survive.
    pub fn is_conditional_def(&self) -> bool {
        self.guard.is_some() && self.def().is_some()
    }

    /// Append every register read by this instruction (including the
    /// guard predicate and address base registers) to `out`.
    pub fn collect_uses(&self, out: &mut Vec<VReg>) {
        fn op_use(o: &Operand, out: &mut Vec<VReg>) {
            if let Operand::Reg(r) = o {
                out.push(*r);
            }
        }
        fn addr_use(a: &Address, out: &mut Vec<VReg>) {
            if let AddrBase::Reg(r) = a.base {
                out.push(r);
            }
        }
        if let Some(g) = &self.guard {
            out.push(g.pred);
        }
        match &self.op {
            Op::Mov { src, .. } | Op::Unary { src, .. } | Op::Cvt { src, .. } => op_use(src, out),
            Op::MovVarAddr { .. } | Op::BarSync => {}
            Op::Binary { a, b, .. } | Op::Setp { a, b, .. } => {
                op_use(a, out);
                op_use(b, out);
            }
            Op::Mad { a, b, c, .. } | Op::Fma { a, b, c, .. } => {
                op_use(a, out);
                op_use(b, out);
                op_use(c, out);
            }
            Op::Selp { a, b, pred, .. } => {
                op_use(a, out);
                op_use(b, out);
                out.push(*pred);
            }
            Op::Ld { addr, .. } => addr_use(addr, out),
            Op::St { addr, src, .. } => {
                addr_use(addr, out);
                op_use(src, out);
            }
        }
    }

    /// The registers read by this instruction, as a fresh vector.
    pub fn uses(&self) -> Vec<VReg> {
        let mut v = Vec::with_capacity(4);
        self.collect_uses(&mut v);
        v
    }

    /// Rewrite every register in the instruction through `f`, which
    /// receives the register and whether it is a def or a use.
    pub fn map_regs(&mut self, mut f: impl FnMut(VReg, RegAccess) -> VReg) {
        fn map_op(o: &mut Operand, f: &mut impl FnMut(VReg, RegAccess) -> VReg) {
            if let Operand::Reg(r) = o {
                *r = f(*r, RegAccess::Use);
            }
        }
        fn map_addr(a: &mut Address, f: &mut impl FnMut(VReg, RegAccess) -> VReg) {
            if let AddrBase::Reg(r) = &mut a.base {
                *r = f(*r, RegAccess::Use);
            }
        }
        if let Some(g) = &mut self.guard {
            g.pred = f(g.pred, RegAccess::Use);
        }
        match &mut self.op {
            Op::Mov { dst, src, .. } => {
                map_op(src, &mut f);
                *dst = f(*dst, RegAccess::Def);
            }
            Op::MovVarAddr { dst, .. } => *dst = f(*dst, RegAccess::Def),
            Op::Unary { dst, src, .. } => {
                map_op(src, &mut f);
                *dst = f(*dst, RegAccess::Def);
            }
            Op::Cvt { dst, src, .. } => {
                map_op(src, &mut f);
                *dst = f(*dst, RegAccess::Def);
            }
            Op::Binary { dst, a, b, .. } => {
                map_op(a, &mut f);
                map_op(b, &mut f);
                *dst = f(*dst, RegAccess::Def);
            }
            Op::Setp { dst, a, b, .. } => {
                map_op(a, &mut f);
                map_op(b, &mut f);
                *dst = f(*dst, RegAccess::Def);
            }
            Op::Mad { dst, a, b, c, .. } | Op::Fma { dst, a, b, c, .. } => {
                map_op(a, &mut f);
                map_op(b, &mut f);
                map_op(c, &mut f);
                *dst = f(*dst, RegAccess::Def);
            }
            Op::Selp {
                dst, a, b, pred, ..
            } => {
                map_op(a, &mut f);
                map_op(b, &mut f);
                *pred = f(*pred, RegAccess::Use);
                *dst = f(*dst, RegAccess::Def);
            }
            Op::Ld { dst, addr, .. } => {
                map_addr(addr, &mut f);
                *dst = f(*dst, RegAccess::Def);
            }
            Op::St { addr, src, .. } => {
                map_addr(addr, &mut f);
                map_op(src, &mut f);
            }
            Op::BarSync => {}
        }
    }

    /// Whether this instruction accesses memory (in any space).
    pub fn is_memory(&self) -> bool {
        matches!(self.op, Op::Ld { .. } | Op::St { .. })
    }

    /// The state space accessed, if this is a load or store.
    pub fn memory_space(&self) -> Option<Space> {
        match &self.op {
            Op::Ld { space, .. } | Op::St { space, .. } => Some(*space),
            _ => None,
        }
    }

    /// Whether this instruction executes on the special function unit.
    pub fn is_sfu(&self) -> bool {
        match &self.op {
            Op::Unary { op, .. } => op.is_sfu(),
            Op::Binary {
                op: BinOp::Div | BinOp::Rem,
                ..
            } => true,
            _ => false,
        }
    }

    /// A short mnemonic for diagnostics (e.g. `"ld.global"`).
    pub fn mnemonic(&self) -> String {
        match &self.op {
            Op::Mov { .. } | Op::MovVarAddr { .. } => "mov".to_string(),
            Op::Unary { op, .. } => op.mnemonic().to_string(),
            Op::Binary { op, .. } => op.mnemonic().to_string(),
            Op::Mad { .. } => "mad".to_string(),
            Op::Fma { .. } => "fma".to_string(),
            Op::Cvt { .. } => "cvt".to_string(),
            Op::Ld { space, .. } => format!("ld.{}", space.suffix()),
            Op::St { space, .. } => format!("st.{}", space.suffix()),
            Op::Setp { .. } => "setp".to_string(),
            Op::Selp { .. } => "selp".to_string(),
            Op::BarSync => "bar.sync".to_string(),
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::printer::write_instruction(f, self)
    }
}

/// Convenience constructors used by the builder and by tests.
impl Op {
    /// `mov` reading a special register.
    pub fn mov_special(ty: Type, dst: VReg, sr: SpecialReg) -> Op {
        Op::Mov {
            ty,
            dst,
            src: Operand::Special(sr),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u32) -> VReg {
        VReg(n)
    }

    #[test]
    fn def_and_uses_of_binary() {
        let i = Instruction::new(Op::Binary {
            op: BinOp::Add,
            ty: Type::U32,
            dst: r(2),
            a: Operand::Reg(r(0)),
            b: Operand::Reg(r(1)),
        });
        assert_eq!(i.def(), Some(r(2)));
        assert_eq!(i.uses(), vec![r(0), r(1)]);
        assert!(!i.is_memory());
    }

    #[test]
    fn store_has_no_def() {
        let i = Instruction::new(Op::St {
            space: Space::Global,
            ty: Type::F32,
            addr: Address::reg(r(5)),
            src: Operand::Reg(r(6)),
        });
        assert_eq!(i.def(), None);
        assert_eq!(i.uses(), vec![r(5), r(6)]);
        assert_eq!(i.memory_space(), Some(Space::Global));
    }

    #[test]
    fn guard_counts_as_use() {
        let i = Instruction::guarded(
            Guard::when(r(9)),
            Op::Mov {
                ty: Type::U32,
                dst: r(1),
                src: Operand::Imm(0),
            },
        );
        assert_eq!(i.uses(), vec![r(9)]);
        assert!(i.is_conditional_def());
    }

    #[test]
    fn map_regs_renames_all_positions() {
        let mut i = Instruction::new(Op::Mad {
            ty: Type::F32,
            dst: r(3),
            a: Operand::Reg(r(0)),
            b: Operand::Reg(r(1)),
            c: Operand::Reg(r(2)),
        });
        i.map_regs(|v, _| VReg(v.0 + 10));
        assert_eq!(i.def(), Some(r(13)));
        assert_eq!(i.uses(), vec![r(10), r(11), r(12)]);
    }

    #[test]
    fn map_regs_distinguishes_def_from_use() {
        let mut i = Instruction::new(Op::Binary {
            op: BinOp::Add,
            ty: Type::U32,
            dst: r(0),
            a: Operand::Reg(r(0)),
            b: Operand::Imm(1),
        });
        // Rename only defs.
        i.map_regs(|v, acc| {
            if acc == RegAccess::Def {
                VReg(v.0 + 1)
            } else {
                v
            }
        });
        assert_eq!(i.def(), Some(r(1)));
        assert_eq!(i.uses(), vec![r(0)]);
    }

    #[test]
    fn sfu_detection() {
        let sqrt = Instruction::new(Op::Unary {
            op: UnOp::Sqrt,
            ty: Type::F32,
            dst: r(1),
            src: Operand::Reg(r(0)),
        });
        assert!(sqrt.is_sfu());
        let div = Instruction::new(Op::Binary {
            op: BinOp::Div,
            ty: Type::F32,
            dst: r(1),
            a: Operand::Reg(r(0)),
            b: Operand::Reg(r(0)),
        });
        assert!(div.is_sfu());
    }

    #[test]
    fn selp_uses_pred() {
        let i = Instruction::new(Op::Selp {
            ty: Type::U32,
            dst: r(3),
            a: Operand::Reg(r(0)),
            b: Operand::Reg(r(1)),
            pred: r(2),
        });
        assert_eq!(i.uses(), vec![r(0), r(1), r(2)]);
    }

    #[test]
    fn address_base_is_a_use() {
        let i = Instruction::new(Op::Ld {
            space: Space::Shared,
            ty: Type::U32,
            dst: r(1),
            addr: Address::reg_offset(r(0), 16),
        });
        assert_eq!(i.uses(), vec![r(0)]);
    }
}
