//! Simulation statistics.

/// Counters collected over one simulated kernel launch (one SM's share
/// of the grid).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total simulated cycles until the last block finished.
    pub cycles: u64,
    /// Warp instructions issued (terminator branches included).
    pub warp_insts: u64,
    /// Thread instructions (warp instructions × active lanes).
    pub thread_insts: u64,
    /// Thread blocks completed.
    pub blocks: u32,
    /// Resident blocks the SM actually ran with (the achieved TLP).
    pub resident_blocks: u32,

    /// L1 data-cache accesses (one per memory transaction).
    pub l1_accesses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// Issue attempts aborted because the L1's MSHRs or miss path were
    /// saturated — the paper's "pipeline stall caused by the congestion
    /// of cache requests" (Figure 5b).
    pub l1_reservation_fails: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// DRAM transactions.
    pub dram_transactions: u64,

    /// Warp-level global-memory instructions executed.
    pub global_insts: u64,
    /// Warp-level local-memory instructions executed (spill traffic).
    pub local_insts: u64,
    /// Warp-level shared-memory instructions executed.
    pub shared_insts: u64,
    /// Bytes moved to/from local memory (thread granularity).
    pub local_bytes: u64,
    /// SFU instructions executed (warp level).
    pub sfu_insts: u64,
    /// Barrier instructions executed (warp level).
    pub barrier_insts: u64,
    /// Conditional branches that diverged (pushed SIMT frames).
    pub divergent_branches: u64,

    /// Cycles in which a scheduler had no ready warp to issue.
    pub idle_scheduler_cycles: u64,
    /// Cycles in which at least one warp existed but every candidate
    /// was blocked on the scoreboard (latency not hidden).
    pub scoreboard_stall_cycles: u64,
}

impl SimStats {
    /// Instructions per cycle (warp instructions).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.warp_insts as f64 / self.cycles as f64
        }
    }

    /// L1 hit rate in `[0, 1]`; 0 when the cache was never accessed.
    pub fn l1_hit_rate(&self) -> f64 {
        if self.l1_accesses == 0 {
            0.0
        } else {
            self.l1_hits as f64 / self.l1_accesses as f64
        }
    }

    /// L2 hit rate in `[0, 1]`.
    pub fn l2_hit_rate(&self) -> f64 {
        if self.l2_accesses == 0 {
            0.0
        } else {
            self.l2_hits as f64 / self.l2_accesses as f64
        }
    }

    /// Performance relative to a baseline run of the same work:
    /// `baseline.cycles / self.cycles`.
    pub fn speedup_over(&self, baseline: &SimStats) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            baseline.cycles as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let s = SimStats {
            cycles: 100,
            warp_insts: 250,
            l1_accesses: 10,
            l1_hits: 7,
            l2_accesses: 4,
            l2_hits: 1,
            ..Default::default()
        };
        assert_eq!(s.ipc(), 2.5);
        assert_eq!(s.l1_hit_rate(), 0.7);
        assert_eq!(s.l2_hit_rate(), 0.25);
    }

    #[test]
    fn rates_are_zero_without_activity() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.l1_hit_rate(), 0.0);
        assert_eq!(s.l2_hit_rate(), 0.0);
    }

    #[test]
    fn speedup() {
        let fast = SimStats {
            cycles: 50,
            ..Default::default()
        };
        let slow = SimStats {
            cycles: 100,
            ..Default::default()
        };
        assert_eq!(fast.speedup_over(&slow), 2.0);
        assert_eq!(slow.speedup_over(&fast), 0.5);
    }
}
