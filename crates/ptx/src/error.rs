//! Error types for parsing and validation.

use std::error::Error;
use std::fmt;

use crate::block::BlockId;
use crate::reg::VReg;
use crate::types::{Space, Type};

/// A PTX parse error with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line where the error occurred.
    pub line: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

/// A structural or type violation found by [`Kernel::validate`].
///
/// [`Kernel::validate`]: crate::Kernel::validate
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A block's id does not equal its index in the block list.
    BlockIdMismatch {
        /// The index the block sits at.
        expected: usize,
        /// The id the block carries.
        found: BlockId,
    },
    /// A terminator targets a block that does not exist.
    DanglingBlock {
        /// The branching block.
        from: BlockId,
        /// The missing target.
        target: BlockId,
    },
    /// A register id outside the kernel's register table.
    UnknownReg {
        /// The out-of-range register.
        reg: VReg,
        /// The block containing the reference.
        block: BlockId,
    },
    /// A register used at a type other than its declared type.
    TypeMismatch {
        /// The offending register.
        reg: VReg,
        /// The type required by the instruction.
        expected: Type,
        /// The register's declared type.
        found: Type,
        /// The block containing the reference.
        block: BlockId,
    },
    /// A reference to an undeclared kernel variable.
    UnknownVar {
        /// The missing variable name.
        name: String,
        /// The block containing the reference.
        block: BlockId,
    },
    /// A reference to an undeclared kernel parameter.
    UnknownParam {
        /// The missing parameter name.
        name: String,
        /// The block containing the reference.
        block: BlockId,
    },
    /// A memory access whose space does not match the variable's space.
    SpaceMismatch {
        /// The variable name.
        name: String,
        /// The space of the access.
        expected: Space,
        /// The declared space of the variable.
        found: Space,
        /// The block containing the reference.
        block: BlockId,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::BlockIdMismatch { expected, found } => {
                write!(f, "block at index {expected} carries id {found}")
            }
            ValidateError::DanglingBlock { from, target } => {
                write!(f, "block {from} branches to nonexistent block {target}")
            }
            ValidateError::UnknownReg { reg, block } => {
                write!(f, "register {reg} in {block} is not in the register table")
            }
            ValidateError::TypeMismatch {
                reg,
                expected,
                found,
                block,
            } => write!(
                f,
                "register {reg} in {block} used as {expected} but declared {found}"
            ),
            ValidateError::UnknownVar { name, block } => {
                write!(f, "variable `{name}` referenced in {block} is not declared")
            }
            ValidateError::UnknownParam { name, block } => {
                write!(
                    f,
                    "parameter `{name}` referenced in {block} is not declared"
                )
            }
            ValidateError::SpaceMismatch {
                name,
                expected,
                found,
                block,
            } => write!(
                f,
                "`{name}` accessed as {expected} in {block} but declared {found}"
            ),
        }
    }
}

impl Error for ValidateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_nonempty() {
        let e = ParseError::new(3, "bad token");
        assert!(e.to_string().contains("line 3"));
        let v = ValidateError::DanglingBlock {
            from: BlockId(0),
            target: BlockId(9),
        };
        assert!(v.to_string().contains("BB9"));
    }
}
