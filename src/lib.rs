//! Umbrella crate for the CRAT reproduction suite.
//!
//! Re-exports the public API of every member crate so examples and
//! integration tests can depend on a single package:
//!
//! * [`ptx`] — the PTX-subset IR (parser, printer, builder, liveness);
//! * [`regalloc`] — Chaitin–Briggs and linear-scan register allocation
//!   with shared-memory spill optimization;
//! * [`sim`] — the GPU timing simulator (SMs, warps, caches, energy);
//! * [`core`] — the CRAT optimizer (design-space pruning, TPSC);
//! * [`workloads`] — the synthetic benchmark suite from the paper.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use crat_core as core;
pub use crat_ptx as ptx;
pub use crat_regalloc as regalloc;
pub use crat_sim as sim;
pub use crat_workloads as workloads;
